// Shared setup for the per-figure harnesses: database construction, the
// paper's workload roster, and breakdown-row formatting.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "src/engine/database.h"
#include "src/workload/driver.h"
#include "src/workload/tm1.h"
#include "src/workload/tpcb.h"
#include "src/workload/tpcc.h"

namespace slidb::bench {

/// A workload from the paper's evaluation roster (§5.1), paired with a
/// fresh database sized for this machine (scaled down from the paper's
/// Niagara-II datasets; see DESIGN.md).
struct PaperWorkload {
  std::string label;
  std::unique_ptr<Database> db;
  std::unique_ptr<Workload> workload;
};

inline DatabaseOptions BenchDbOptions(bool sli) {
  DatabaseOptions o;
  o.lock.enable_sli = sli;
  o.lock.deadlock_interval_us = 500;
  o.lock.lock_timeout_us = 5'000'000;
  // Simulate the queue-traversal cost of a loaded many-context machine
  // (DESIGN.md substitution; SimQueueWorkNs() reads the --sim=NS flag).
  o.lock.sim_queue_work_ns = SimQueueWorkNs();
  o.log.flush_interval_us = 10;  // responsive group commit
  o.buffer.num_frames = 1u << 15;  // 256 MB
  return o;
}

inline std::unique_ptr<PaperWorkload> MakeTm1(const std::string& label,
                                              Tm1Workload::Mix mix,
                                              Tm1TxnType type, bool quick,
                                              bool sli) {
  auto pw = std::make_unique<PaperWorkload>();
  pw->label = label;
  pw->db = std::make_unique<Database>(BenchDbOptions(sli));
  Tm1Options opts;
  opts.subscribers = quick ? 2'000 : 20'000;
  pw->workload = std::make_unique<Tm1Workload>(opts, mix, type);
  pw->workload->Load(*pw->db);
  return pw;
}

inline std::unique_ptr<PaperWorkload> MakeTpcb(bool quick, bool sli) {
  auto pw = std::make_unique<PaperWorkload>();
  pw->label = "TPC-B";
  pw->db = std::make_unique<Database>(BenchDbOptions(sli));
  TpcbOptions opts;
  opts.branches = quick ? 4 : 16;
  opts.tellers_per_branch = 10;
  opts.accounts_per_branch = quick ? 1'000 : 10'000;
  pw->workload = std::make_unique<TpcbWorkload>(opts);
  pw->workload->Load(*pw->db);
  return pw;
}

inline std::unique_ptr<PaperWorkload> MakeTpcc(const std::string& label,
                                               TpccWorkload::Mix mix,
                                               TpccTxnType type, bool quick,
                                               bool sli) {
  auto pw = std::make_unique<PaperWorkload>();
  pw->label = label;
  pw->db = std::make_unique<Database>(BenchDbOptions(sli));
  TpccOptions opts;
  // Enough warehouses that Payment's w_ytd row conflicts stay moderate at
  // the default 8-agent load (the paper used 300 warehouses for 64
  // contexts; true row conflicts are not what Fig 11 measures).
  opts.warehouses = quick ? 4 : 8;
  opts.districts_per_warehouse = 10;
  opts.customers_per_district = quick ? 300 : 1'000;
  opts.items = quick ? 1'000 : 10'000;
  opts.initial_orders_per_district = quick ? 30 : 100;
  pw->workload = std::make_unique<TpccWorkload>(opts, mix, type);
  pw->workload->Load(*pw->db);
  return pw;
}

/// Lazy factory for one roster entry. Databases own background threads
/// (log flusher, deadlock detector), so benches must construct one at a
/// time — never the whole roster at once.
struct RosterEntry {
  std::string label;
  std::function<std::unique_ptr<PaperWorkload>(bool sli)> make;
};

/// The ten transactions / mixes of Figure 6 and friends.
/// `which`: bitmask — 1 = TM1 singles, 2 = mixes, 4 = TPC-B, 8 = TPC-C.
inline std::vector<RosterEntry> PaperRoster(bool quick, int which = 15) {
  std::vector<RosterEntry> roster;
  using Mix = Tm1Workload::Mix;
  using TMix = TpccWorkload::Mix;
  const auto tm1 = [quick](const char* label, Mix mix, Tm1TxnType type) {
    return RosterEntry{label, [=](bool sli) {
                         return MakeTm1(label, mix, type, quick, sli);
                       }};
  };
  const auto tpcc = [quick](const char* label, TMix mix, TpccTxnType type) {
    return RosterEntry{label, [=](bool sli) {
                         return MakeTpcc(label, mix, type, quick, sli);
                       }};
  };
  if (which & 1) {
    roster.push_back(tm1("getSub", Mix::kSingle,
                         Tm1TxnType::kGetSubscriberData));
    roster.push_back(tm1("getDest", Mix::kSingle,
                         Tm1TxnType::kGetNewDestination));
    roster.push_back(tm1("getAccess", Mix::kSingle,
                         Tm1TxnType::kGetAccessData));
    roster.push_back(tm1("updateSub", Mix::kSingle,
                         Tm1TxnType::kUpdateSubscriberData));
    roster.push_back(tm1("updateLoc", Mix::kSingle,
                         Tm1TxnType::kUpdateLocation));
  }
  if (which & 2) {
    roster.push_back(tm1("ForwardMix", Mix::kForward,
                         Tm1TxnType::kGetNewDestination));
    roster.push_back(tm1("NDBB-Mix", Mix::kFull,
                         Tm1TxnType::kGetSubscriberData));
  }
  if (which & 4) {
    roster.push_back(RosterEntry{
        "TPC-B", [quick](bool sli) { return MakeTpcb(quick, sli); }});
  }
  if (which & 8) {
    roster.push_back(tpcc("Payment", TMix::kSingle, TpccTxnType::kPayment));
    roster.push_back(tpcc("NewOrder", TMix::kSingle, TpccTxnType::kNewOrder));
    roster.push_back(
        tpcc("OrderStatus", TMix::kSingle, TpccTxnType::kOrderStatus));
    roster.push_back(tpcc("Delivery", TMix::kSingle, TpccTxnType::kDelivery));
    roster.push_back(
        tpcc("StockLevel", TMix::kSingle, TpccTxnType::kStockLevel));
    roster.push_back(tpcc("SmallMix", TMix::kSmall, TpccTxnType::kPayment));
    roster.push_back(tpcc("TPCC-Mix", TMix::kFull, TpccTxnType::kPayment));
  }
  return roster;
}

/// Percentage of CPU time (work + contention) by category, matching the
/// four-way split in Figures 1, 6, 10 plus the SLI component.
struct BreakdownRow {
  double lockmgr_work = 0, lockmgr_cont = 0;
  double sli_pct = 0;
  double log_pct = 0;
  double other_work = 0, other_cont = 0;
};

inline BreakdownRow ComputeBreakdown(const ProfileSnapshot& p) {
  BreakdownRow row;
  const double cpu = static_cast<double>(p.TotalCpu());
  if (cpu == 0) return row;
  const auto pct = [&](uint64_t v) { return 100.0 * static_cast<double>(v) / cpu; };
  const size_t lm = static_cast<size_t>(Component::kLockManager);
  const size_t sli = static_cast<size_t>(Component::kSli);
  const size_t log = static_cast<size_t>(Component::kLog);
  row.lockmgr_work = pct(p.work[lm]);
  row.lockmgr_cont = pct(p.contention[lm]);
  row.sli_pct = pct(p.work[sli] + p.contention[sli]);
  row.log_pct = pct(p.work[log] + p.contention[log]);
  double other_work = 0, other_cont = 0;
  for (size_t i = 0; i < kNumComponents; ++i) {
    if (i == lm || i == sli || i == log) continue;
    other_work += static_cast<double>(p.work[i]);
    other_cont += static_cast<double>(p.contention[i]);
  }
  row.other_work = 100.0 * other_work / cpu;
  row.other_cont = 100.0 * other_cont / cpu;
  return row;
}

/// Run a thread ladder and return the result with the highest throughput
/// (the paper reports breakdowns "at peak performance", Fig 6).
inline DriverResult RunAtPeak(Database& db, Workload& w, const BenchArgs& args,
                              int* peak_threads) {
  DriverResult best;
  int best_threads = 1;
  for (int threads : ThreadLadder(args.max_threads)) {
    DriverOptions dopts;
    dopts.num_agents = threads;
    dopts.duration_s = args.duration_s;
    dopts.warmup_s = args.warmup_s;
    dopts.seed = args.seed;
    const DriverResult r = RunWorkload(db, w, dopts);
    if (r.tps > best.tps) {
      best = r;
      best_threads = threads;
    }
  }
  *peak_threads = best_threads;
  return best;
}

}  // namespace slidb::bench
