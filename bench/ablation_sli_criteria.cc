// Ablation: which of SLI's design choices matter? Runs the TM1 mix at a
// fixed (high) agent count under variants of the eligibility criteria
// (paper §4.2) and the §4.4 hysteresis option, reporting throughput and
// SLI outcome counters for each.
#include <cstdio>

#include "fig_common.h"

using namespace slidb;
using namespace slidb::bench;

namespace {

struct Variant {
  const char* label;
  void (*configure)(LockManagerOptions&);
};

const Variant kVariants[] = {
    {"baseline (SLI off)", [](LockManagerOptions& o) { o.enable_sli = false; }},
    {"SLI full (paper)", [](LockManagerOptions& o) { o.enable_sli = true; }},
    {"no hotness filter",
     [](LockManagerOptions& o) {
       o.enable_sli = true;
       o.sli_require_hot = false;
     }},
    {"no parent rule",
     [](LockManagerOptions& o) {
       o.enable_sli = true;
       o.sli_require_parent = false;
     }},
    {"no waiter check",
     [](LockManagerOptions& o) {
       o.enable_sli = true;
       o.sli_require_no_waiters = false;
     }},
    {"allow row locks",
     [](LockManagerOptions& o) {
       o.enable_sli = true;
       o.sli_require_high_level = false;
     }},
    {"hysteresis k=2 (4.4#2)",
     [](LockManagerOptions& o) {
       o.enable_sli = true;
       o.sli_hysteresis = 2;
     }},
    {"hot threshold 1/16",
     [](LockManagerOptions& o) {
       o.enable_sli = true;
       o.hot_min_contended = 1;
     }},
    {"hot threshold 8/16",
     [](LockManagerOptions& o) {
       o.enable_sli = true;
       o.hot_min_contended = 8;
     }},
};

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = ParseArgs(argc, argv);
  std::printf("Ablation: SLI criteria variants on the TM1 mix\n\n");

  const int threads = args.max_threads > 0 ? args.max_threads : 8;
  TablePrinter table({"variant", "tps", "lm_cont%", "inherited", "used%",
                      "invalidated%"});
  for (const Variant& v : kVariants) {
    auto pw = MakeTm1("NDBB-Mix", Tm1Workload::Mix::kFull,
                      Tm1TxnType::kGetSubscriberData, args.quick, false);
    v.configure(pw->db->lock_manager().mutable_options());

    DriverOptions dopts;
    dopts.num_agents = threads;
    dopts.duration_s = args.duration_s;
    dopts.warmup_s = args.warmup_s;
    dopts.seed = args.seed;
    const DriverResult r = RunWorkload(*pw->db, *pw->workload, dopts);
    const BreakdownRow b = ComputeBreakdown(r.profile);
    const uint64_t inh = r.counters.Get(Counter::kSliInherited);
    const uint64_t used = r.counters.Get(Counter::kSliReclaimed);
    const uint64_t inval = r.counters.Get(Counter::kSliInvalidated);
    const auto pct = [&](uint64_t x) {
      return inh == 0 ? 0.0
                      : 100.0 * static_cast<double>(x) / static_cast<double>(inh);
    };
    table.Row({v.label, Fmt("%.0f", r.tps), Fmt("%.1f", b.lockmgr_cont),
               Fmt("%llu", static_cast<unsigned long long>(inh)),
               Fmt("%.1f", pct(used)), Fmt("%.1f", pct(inval))});
  }
  std::printf(
      "\nReading: the paper's criteria should be near the top; 'allow row\n"
      "locks' inflates inherited counts without helping; 'no waiter check'\n"
      "risks invalidation churn under write traffic.\n");
  return 0;
}
