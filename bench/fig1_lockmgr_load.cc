// Figure 1: lock manager overhead and contention as system load increases
// (NDBB/TM1 mix, SLI off). The paper shows lock-manager contention growing
// from negligible to ~75% of transaction CPU time as load rises; overhead
// (useful lock-manager work) stays a small slice throughout.
//
// x-axis: offered load = number of agent threads (the paper varies load on
// a 64-context box; we oversubscribe a smaller one — see DESIGN.md).
#include <cstdio>

#include "fig_common.h"

using namespace slidb;
using namespace slidb::bench;

int main(int argc, char** argv) {
  const BenchArgs args = ParseArgs(argc, argv);
  std::printf("Figure 1: lock manager overhead vs load (TM1 mix, SLI off)\n\n");

  auto pw = MakeTm1("NDBB-Mix", Tm1Workload::Mix::kFull,
                    Tm1TxnType::kGetSubscriberData, args.quick, /*sli=*/false);

  TablePrinter table({"threads", "tps", "util", "lm_work%", "lm_cont%",
                      "other_work%", "other_cont%"});
  for (int threads : ThreadLadder(args.max_threads)) {
    DriverOptions dopts;
    dopts.num_agents = threads;
    dopts.duration_s = args.duration_s;
    dopts.warmup_s = args.warmup_s;
    dopts.seed = args.seed;
    const DriverResult r = RunWorkload(*pw->db, *pw->workload, dopts);
    const BreakdownRow b = ComputeBreakdown(r.profile);
    table.Row({Fmt("%d", threads), Fmt("%.0f", r.tps),
               Fmt("%.2f", r.cpu_utilization), Fmt("%.1f", b.lockmgr_work),
               Fmt("%.1f", b.lockmgr_cont), Fmt("%.1f", b.other_work),
               Fmt("%.1f", b.other_cont)});
    for (int i = 1; i < argc; ++i) {
      if (std::string(argv[i]) == "--dump") {
        std::printf("%s\n", r.profile.ToString().c_str());
      }
    }
  }
  std::printf(
      "\nExpected shape (paper): lm_cont%% grows rapidly with load while\n"
      "lm_work%% stays a small, roughly constant slice.\n");
  return 0;
}
