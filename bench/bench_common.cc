#include "bench_common.h"

#include <cstdarg>
#include <cstring>
#include <thread>

namespace slidb::bench {

TablePrinter::TablePrinter(std::vector<std::string> headers) {
  std::string line;
  for (const auto& h : headers) {
    widths.push_back(h.size() + 2 < 12 ? 12 : h.size() + 2);
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%-*s", static_cast<int>(widths.back()),
                  h.c_str());
    line += buf;
  }
  std::printf("%s\n", line.c_str());
  std::printf("%s\n", std::string(line.size(), '-').c_str());
}

void TablePrinter::Row(const std::vector<std::string>& cells) {
  std::string line;
  for (size_t i = 0; i < cells.size(); ++i) {
    const size_t w = i < widths.size() ? widths[i] : 12;
    char buf[160];
    std::snprintf(buf, sizeof(buf), "%-*s", static_cast<int>(w),
                  cells[i].c_str());
    line += buf;
    if (cells[i].size() >= w) line += ' ';  // keep long cells separated
  }
  std::printf("%s\n", line.c_str());
  std::fflush(stdout);
}

namespace {
uint64_t g_sim_queue_ns = 100;
}  // namespace

uint64_t SimQueueWorkNs() { return g_sim_queue_ns; }

BenchArgs ParseArgs(int argc, char** argv) {
  BenchArgs args;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--duration=", 11) == 0) {
      args.duration_s = std::atof(argv[i] + 11);
    } else if (std::strncmp(argv[i], "--warmup=", 9) == 0) {
      args.warmup_s = std::atof(argv[i] + 9);
    } else if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      args.max_threads = std::atoi(argv[i] + 10);
    } else if (std::strncmp(argv[i], "--seed=", 7) == 0) {
      args.seed = std::strtoull(argv[i] + 7, nullptr, 10);
    } else if (std::strncmp(argv[i], "--sim=", 6) == 0) {
      args.sim_queue_ns = std::strtoull(argv[i] + 6, nullptr, 10);
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      args.json_path = argv[i] + 7;
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      args.quick = true;
      args.duration_s = 0.25;
      args.warmup_s = 0.1;
    }
  }
  g_sim_queue_ns = args.sim_queue_ns;
  return args;
}

void JsonWriter::Prefix() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!need_comma_.empty()) {
    if (need_comma_.back()) out_ += ',';
    need_comma_.back() = true;
  }
}

JsonWriter& JsonWriter::BeginObject() {
  Prefix();
  out_ += '{';
  need_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  need_comma_.pop_back();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  Prefix();
  out_ += '[';
  need_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  need_comma_.pop_back();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::Key(const std::string& k) {
  Prefix();
  out_ += '"';
  out_ += k;  // bench keys are plain identifiers; no escaping needed
  out_ += "\":";
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::Value(double v) {
  Prefix();
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::Value(uint64_t v) {
  Prefix();
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::Value(int64_t v) {
  Prefix();
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::Value(bool v) {
  Prefix();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::Value(const std::string& v) {
  Prefix();
  out_ += '"';
  for (char c : v) {
    if (c == '"' || c == '\\') out_ += '\\';
    out_ += c;
  }
  out_ += '"';
  return *this;
}

bool JsonWriter::WriteTo(const std::string& path) const {
  if (path.empty()) {
    std::printf("%s\n", out_.c_str());
    return true;
  }
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fputs(out_.c_str(), f);
  std::fputc('\n', f);
  std::fclose(f);
  return true;
}

std::string Fmt(const char* fmt, ...) {
  char buf[256];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  return buf;
}

std::vector<int> ThreadLadder(int max_threads) {
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  const int cap = max_threads > 0 ? max_threads : (hw >= 2 ? hw * 8 : 16);
  std::vector<int> ladder;
  for (int t = 1; t <= cap; t *= 2) ladder.push_back(t);
  if (ladder.back() != cap) ladder.push_back(cap);
  return ladder;
}

}  // namespace slidb::bench
