// Macro benchmark for the decentralized commit pipeline.
//
// Section 1 — raw log-append throughput: N writer threads hammering
// LogManager::Append, latch-free reservation vs the legacy single-latch
// path, plus the batched row (LogStagingBuffer + AppendBatch, 32 sealed
// records per ring reservation — the transaction-staging publish path).
// On a many-context machine this shows the append-latch serialization
// directly; on a single-context host the latch cannot convoy, so treat
// the latched-vs-reserve comparison as trajectory numbers. The batched
// row is meaningful everywhere: it amortizes per-record fixed costs that
// exist even on one core.
//
// Section 2 — commit pipeline end-to-end (the headline): TPC-B and the
// TM1 full mix with a realistic log-device latency charged per flush,
// comparing the legacy pipeline (latched append + broadcast wakeup +
// locks held across the durable wait) against the decentralized one
// (latch-free reservation + consolidated group commit + early lock
// release). This is where removing the commit I/O from the lock critical
// path becomes visible at the workload level.
//
// Section 3 — SLI matrix: the same workloads through RunWorkload at an
// agent ladder, SLI off and on, on the new pipeline.
//
// Emits a human table on stdout and, with --json=FILE, the
// BENCH_workloads.json record consumed by CI's bench smoke job.
#include <algorithm>
#include <atomic>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "fig_common.h"
#include "src/log/log_manager.h"
#include "src/util/time_util.h"

namespace slidb::bench {
namespace {

/// Simulated log-device write latency for the end-to-end sections (a fast
/// SSD fsync; the paper's methodology of charging latency per I/O).
constexpr uint64_t kLogIoDelayUs = 100;

struct LogAppendSample {
  const char* mode;
  int threads;
  uint32_t payload_bytes = 0;
  double appends_per_s = 0;
  double mb_per_s = 0;
  uint64_t resv_retries = 0;
  uint64_t batch_appends = 0;       ///< batch publications (batched mode)
  double records_per_batch = 0;     ///< mean records amortized per batch
};

/// Raw append throughput: per-record (`batch_records` = 0) pays one ticket
/// fetch-add + slot handoff + seal per record; batched stages
/// `batch_records` records per AppendBatch publication (the
/// transaction-staging path, minus the transaction). Records at or below
/// the 64-byte wire bound additionally publish under kBatchSeal envelopes
/// — one CRC per run instead of one per record.
LogAppendSample RunLogAppend(const char* label, LogOptions::AppendMode mode,
                             int threads, double duration_s,
                             uint32_t payload_bytes,
                             uint32_t batch_records = 0) {
  LogOptions o;
  o.append_mode = mode;
  o.flush_interval_us = 10;
  LogManager log(o);

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> total{0};
  std::vector<CounterSet> counters(threads);
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      ScopedCounterSet routed(&counters[t]);
      std::vector<uint8_t> payload(payload_bytes, 0x5A);
      uint64_t n = 0;
      if (batch_records == 0) {
        while (!stop.load(std::memory_order_relaxed)) {
          log.Append(t + 1, LogRecordType::kUpdate, payload.data(),
                     payload_bytes);
          ++n;
        }
      } else {
        LogStagingBuffer staging;
        while (!stop.load(std::memory_order_relaxed)) {
          for (uint32_t i = 0; i < batch_records; ++i) {
            staging.Stage(t + 1, LogRecordType::kUpdate, payload.data(),
                          payload_bytes);
          }
          log.AppendBatch(&staging);
          n += batch_records;
        }
      }
      total.fetch_add(n, std::memory_order_relaxed);
    });
  }

  const uint64_t t0 = NowNanos();
  std::this_thread::sleep_for(
      std::chrono::microseconds(static_cast<int64_t>(duration_s * 1e6)));
  stop.store(true, std::memory_order_relaxed);
  for (auto& w : workers) w.join();
  const double wall_s = static_cast<double>(NowNanos() - t0) / 1e9;

  LogAppendSample s;
  s.mode = label;
  s.threads = threads;
  s.payload_bytes = payload_bytes;
  s.appends_per_s = static_cast<double>(total.load()) / wall_s;
  s.mb_per_s =
      s.appends_per_s * (payload_bytes + sizeof(LogRecordHeader)) / 1e6;
  uint64_t batched_records = 0;
  for (const CounterSet& c : counters) {
    s.resv_retries += c.Get(Counter::kLogResvRetries);
    s.batch_appends += c.Get(Counter::kLogBatchAppends);
    batched_records += c.Get(Counter::kLogBatchRecords);
  }
  if (s.batch_appends > 0) {
    s.records_per_batch = static_cast<double>(batched_records) /
                          static_cast<double>(s.batch_appends);
  }
  return s;
}

struct WorkloadSample {
  std::string workload;
  std::string config;  ///< "legacy" / "decentralized" / "speculative" /
                       ///< "sli_off" / "sli_on"
  int agents = 0;
  double tps = 0;
  uint64_t commits = 0;
  uint64_t user_aborts = 0;
  uint64_t deadlock_aborts = 0;
  uint64_t lock_waits = 0;
  uint64_t early_release = 0;
  uint64_t resv_retries = 0;
  uint64_t gc_woken = 0;
  uint64_t spec_reads = 0;     ///< dependency-horizon captures at acquire
  uint64_t deferred_acks = 0;  ///< commits parked on the settlement queue
  double log_pct = 0;
};

WorkloadSample RunWorkloadPoint(PaperWorkload& pw, const char* config,
                                int agents, const BenchArgs& args) {
  DriverOptions dopts;
  dopts.num_agents = agents;
  dopts.duration_s = args.duration_s;
  dopts.warmup_s = args.warmup_s;
  dopts.seed = args.seed;
  const DriverResult r = RunWorkload(*pw.db, *pw.workload, dopts);

  WorkloadSample s;
  s.workload = pw.label;
  s.config = config;
  s.agents = agents;
  s.tps = r.tps;
  s.commits = r.commits;
  s.user_aborts = r.user_aborts;
  s.deadlock_aborts = r.deadlock_aborts;
  s.lock_waits = r.counters.Get(Counter::kLockWaits);
  s.early_release = r.counters.Get(Counter::kTxnEarlyRelease);
  s.resv_retries = r.counters.Get(Counter::kLogResvRetries);
  s.gc_woken = r.counters.Get(Counter::kGroupCommitWaitersWoken);
  s.spec_reads = r.counters.Get(Counter::kTxnSpecReads);
  s.deferred_acks = r.counters.Get(Counter::kTxnDeferredAcks);
  s.log_pct = ComputeBreakdown(r.profile).log_pct;
  return s;
}

/// A fresh database + loaded workload with the commit pipeline configured
/// as "legacy" (single-latch append, broadcast wakeups, locks held until
/// durable), "decentralized" (the new defaults: ELR + synchronous horizon
/// waits) or "speculative" (decentralized + asynchronous commit
/// dependencies — commits park deferred acks instead of stalling).
std::unique_ptr<PaperWorkload> MakeConfigured(const char* which,
                                              const char* config, bool sli,
                                              bool quick) {
  DatabaseOptions o = BenchDbOptions(sli);
  o.log.simulated_io_delay_us = kLogIoDelayUs;
  if (std::strcmp(config, "legacy") == 0) {
    o.log.append_mode = LogOptions::AppendMode::kLatched;
    o.log.waiter_policy = LogOptions::WaiterPolicy::kBroadcast;
    o.txn.early_lock_release = false;
    o.txn.staged_log_appends = false;  // per-record appends, PR-2 baseline
  } else if (std::strcmp(config, "speculative") == 0) {
    o.txn.speculative_reads = true;
  }
  auto pw = std::make_unique<PaperWorkload>();
  pw->db = std::make_unique<Database>(o);
  if (std::strcmp(which, "TPC-B") == 0) {
    pw->label = "TPC-B";
    TpcbOptions opts;
    opts.branches = quick ? 4 : 16;
    opts.tellers_per_branch = 10;
    opts.accounts_per_branch = quick ? 1'000 : 10'000;
    pw->workload = std::make_unique<TpcbWorkload>(opts);
  } else {
    pw->label = "NDBB-Mix";
    Tm1Options opts;
    opts.subscribers = quick ? 2'000 : 20'000;
    pw->workload = std::make_unique<Tm1Workload>(opts, Tm1Workload::Mix::kFull,
                                                 Tm1TxnType::kGetSubscriberData);
  }
  pw->workload->Load(*pw->db);
  return pw;
}

int Main(int argc, char** argv) {
  const BenchArgs args = ParseArgs(argc, argv);
  const char* kWorkloads[] = {"TPC-B", "NDBB-Mix"};

  std::vector<int> agent_ladder = args.quick ? std::vector<int>{1, 2, 4}
                                             : std::vector<int>{1, 2, 4, 8};
  if (args.max_threads > 0) {
    std::erase_if(agent_ladder, [&](int t) { return t > args.max_threads; });
    if (agent_ladder.empty()) agent_ladder = {args.max_threads};
  }

  // ---- Section 1: raw log append, latched vs reserve vs batched ------------
  // 96-byte payloads (the historical rows) and 16-byte "tiny" payloads,
  // where the 32-byte header + per-record seal dominate and the batched
  // path's kBatchSeal envelopes amortize the checksum across whole runs.
  const double append_window = args.quick ? 0.2 : 1.0;
  constexpr uint32_t kBatchedRecords = 32;
  std::printf("== raw log append throughput (records/s) ==\n");
  TablePrinter log_table({"mode", "threads", "payload", "appends/s", "MB/s",
                          "resv_retries", "rec/batch"});
  std::vector<LogAppendSample> log_samples;
  const auto add_log_row = [&](const LogAppendSample& s) {
    log_samples.push_back(s);
    log_table.Row({s.mode, Fmt("%d", s.threads), Fmt("%u", s.payload_bytes),
                   Fmt("%.0f", s.appends_per_s), Fmt("%.1f", s.mb_per_s),
                   Fmt("%llu",
                       static_cast<unsigned long long>(s.resv_retries)),
                   Fmt("%.1f", s.records_per_batch)});
  };
  for (int threads : agent_ladder) {
    add_log_row(RunLogAppend("latched", LogOptions::AppendMode::kLatched,
                             threads, append_window, 96));
  }
  for (int threads : agent_ladder) {
    add_log_row(RunLogAppend("reserve", LogOptions::AppendMode::kReserve,
                             threads, append_window, 96));
  }
  for (int threads : agent_ladder) {
    add_log_row(RunLogAppend("batched", LogOptions::AppendMode::kReserve,
                             threads, append_window, 96, kBatchedRecords));
  }
  for (int threads : agent_ladder) {
    add_log_row(RunLogAppend("reserve_tiny", LogOptions::AppendMode::kReserve,
                             threads, append_window, 16));
  }
  for (int threads : agent_ladder) {
    add_log_row(RunLogAppend("batched_tiny", LogOptions::AppendMode::kReserve,
                             threads, append_window, 16, kBatchedRecords));
  }
  const auto best_of = [&](const char* mode) {
    double best = 0;
    for (const LogAppendSample& s : log_samples) {
      if (std::strcmp(s.mode, mode) == 0) {
        best = std::max(best, s.appends_per_s);
      }
    }
    return best;
  };
  std::printf("# raw append peak (96 B): batched/per-record = %.2fx "
              "(%.0f vs %.0f appends/s)\n",
              best_of("batched") / best_of("reserve"), best_of("batched"),
              best_of("reserve"));
  std::printf("# raw append peak (16 B tiny): batched/per-record = %.2fx "
              "(%.0f vs %.0f appends/s)\n",
              best_of("batched_tiny") / best_of("reserve_tiny"),
              best_of("batched_tiny"), best_of("reserve_tiny"));

  // ---- Section 2: commit pipeline, legacy vs decentralized vs speculative --
  std::printf("\n== commit pipeline (%llu us log device, SLI on) ==\n",
              static_cast<unsigned long long>(kLogIoDelayUs));
  TablePrinter pipe_table({"workload", "pipeline", "agents", "tps",
                           "lock_waits", "gc_woken", "deferred_acks"});
  std::vector<WorkloadSample> pipe_samples;
  for (const char* wl : kWorkloads) {
    for (const char* config : {"legacy", "decentralized", "speculative"}) {
      std::unique_ptr<PaperWorkload> pw =
          MakeConfigured(wl, config, /*sli=*/true, args.quick);
      for (int agents : agent_ladder) {
        const WorkloadSample s = RunWorkloadPoint(*pw, config, agents, args);
        pipe_samples.push_back(s);
        pipe_table.Row(
            {s.workload, s.config, Fmt("%d", s.agents), Fmt("%.0f", s.tps),
             Fmt("%llu", static_cast<unsigned long long>(s.lock_waits)),
             Fmt("%llu", static_cast<unsigned long long>(s.gc_woken)),
             Fmt("%llu", static_cast<unsigned long long>(s.deferred_acks))});
      }
    }
  }

  // ---- Section 3: SLI off/on on the new pipeline ---------------------------
  std::printf("\n== SLI matrix (decentralized pipeline) ==\n");
  TablePrinter sli_table({"workload", "sli", "agents", "tps", "commits",
                          "early_rel"});
  std::vector<WorkloadSample> sli_samples;
  for (const char* wl : kWorkloads) {
    for (const bool sli : {false, true}) {
      const char* config = sli ? "sli_on" : "sli_off";
      std::unique_ptr<PaperWorkload> pw =
          MakeConfigured(wl, "decentralized", sli, args.quick);
      for (int agents : agent_ladder) {
        const WorkloadSample s = RunWorkloadPoint(*pw, config, agents, args);
        sli_samples.push_back(s);
        sli_table.Row(
            {s.workload, sli ? "on" : "off", Fmt("%d", s.agents),
             Fmt("%.0f", s.tps),
             Fmt("%llu", static_cast<unsigned long long>(s.commits)),
             Fmt("%llu", static_cast<unsigned long long>(s.early_release))});
      }
    }
  }

  // Headlines: best multi-agent throughput, decentralized over legacy and
  // speculative over plain ELR (the read-mostly gap the commit-dependency
  // machinery exists to close).
  for (const char* wl : kWorkloads) {
    double best_legacy = 0, best_elr = 0, best_spec = 0;
    for (const WorkloadSample& s : pipe_samples) {
      if (s.workload != wl || s.agents < 2) continue;
      if (s.config == "legacy") best_legacy = std::max(best_legacy, s.tps);
      if (s.config == "decentralized") best_elr = std::max(best_elr, s.tps);
      if (s.config == "speculative") best_spec = std::max(best_spec, s.tps);
    }
    if (best_legacy > 0) {
      std::printf("# %s multi-agent peak: decentralized/legacy = %.2fx "
                  "(%.0f vs %.0f tps)\n",
                  wl, best_elr / best_legacy, best_elr, best_legacy);
    }
    if (best_elr > 0 && best_spec > 0) {
      std::printf("# %s multi-agent peak: speculative/ELR = %.2fx "
                  "(%.0f vs %.0f tps)\n",
                  wl, best_spec / best_elr, best_spec, best_elr);
    }
  }

  const auto emit_workload_samples = [](JsonWriter& json,
                                        const std::vector<WorkloadSample>& v) {
    for (const WorkloadSample& s : v) {
      json.BeginObject();
      json.Key("workload").Value(s.workload);
      json.Key("config").Value(s.config);
      json.Key("sli").Value(s.config != "sli_off");
      json.Key("agents").Value(s.agents);
      json.Key("tps").Value(s.tps);
      json.Key("commits").Value(s.commits);
      json.Key("user_aborts").Value(s.user_aborts);
      json.Key("deadlock_aborts").Value(s.deadlock_aborts);
      json.Key("lock_waits").Value(s.lock_waits);
      json.Key("early_release_commits").Value(s.early_release);
      json.Key("log_resv_retries").Value(s.resv_retries);
      json.Key("gc_waiters_woken").Value(s.gc_woken);
      json.Key("spec_reads").Value(s.spec_reads);
      json.Key("deferred_acks").Value(s.deferred_acks);
      json.Key("log_pct").Value(s.log_pct);
      json.EndObject();
    }
  };

  JsonWriter json;
  json.BeginObject();
  json.Key("bench").Value("macro_workloads");
  json.Key("quick").Value(args.quick);
  json.Key("log_io_delay_us").Value(kLogIoDelayUs);
  json.Key("log_append").BeginArray();
  for (const LogAppendSample& s : log_samples) {
    json.BeginObject();
    json.Key("mode").Value(s.mode);
    json.Key("threads").Value(s.threads);
    json.Key("payload_bytes").Value(static_cast<uint64_t>(s.payload_bytes));
    json.Key("appends_per_s").Value(s.appends_per_s);
    json.Key("mb_per_s").Value(s.mb_per_s);
    json.Key("resv_retries").Value(s.resv_retries);
    json.Key("batch_appends").Value(s.batch_appends);
    json.Key("records_per_batch").Value(s.records_per_batch);
    json.EndObject();
  }
  json.EndArray();
  json.Key("commit_pipeline").BeginArray();
  emit_workload_samples(json, pipe_samples);
  json.EndArray();
  json.Key("workloads").BeginArray();
  emit_workload_samples(json, sli_samples);
  json.EndArray();
  json.EndObject();
  if (!args.json_path.empty()) {
    if (!json.WriteTo(args.json_path)) {
      std::fprintf(stderr, "failed to write %s\n", args.json_path.c_str());
      return 1;
    }
    std::printf("wrote %s\n", args.json_path.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace slidb::bench

int main(int argc, char** argv) { return slidb::bench::Main(argc, argv); }
