// Open-loop overload sweep: offered load × governor on/off over the PR-9
// contention scenarios. The question the matrix answers is the robustness
// one — what happens when offered load EXCEEDS capacity? Closed-loop
// harnesses cannot even ask it (their arrival rate adapts to whatever the
// system sustains), so this bench first calibrates closed-loop capacity per
// scenario, then replays Poisson arrivals at {0.5, 1, 2, 4}× that capacity
// with a per-transaction response deadline and retry-with-backoff, with the
// overload governor off (the "fast until it falls over" baseline) and on
// (admission tokens + bounded entry queue + hot-head wait-depth limiting).
//
// Reported per cell: goodput (commits that met their deadline), raw tps,
// commit p50/p99 measured from the SCHEDULED arrival (so queueing delay
// under overload is visible), and every shed/cancel/deadline counter the
// governor machinery maintains. Governor-off at high load shows the
// collapse — goodput sags and p99 runs away with the backlog — while
// governor-on sheds the excess at the door and stays flat.
//
// Emits a human table on stdout and, with --json=FILE, the
// BENCH_overload.json record consumed by CI's bench smoke job.
#include <algorithm>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "fig_common.h"
#include "src/workload/contention.h"

namespace slidb::bench {
namespace {

constexpr double kOfferedFracs[] = {0.5, 1.0, 2.0, 4.0};
/// Response-time SLA measured from the scheduled arrival.
constexpr uint64_t kDeadlineUs = 20'000;
/// Hot-head wait-depth limit when the governor is on (Thomasian's d).
/// Must sit below max_inflight - 1 or the admission gate makes the depth
/// unreachable (at most max_inflight - 1 waiters can ever form).
constexpr uint32_t kHotWaitDepth = 2;

struct OverloadSample {
  std::string scenario;
  double frac = 0;
  double offered_tps = 0;
  const char* mode = "";
  int agents = 0;
  double tps = 0;
  double goodput_tps = 0;
  uint64_t commits = 0;
  uint64_t goodput_commits = 0;
  uint64_t deadline_misses = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  uint64_t gov_sheds = 0;
  uint64_t gov_queue_timeouts = 0;
  uint64_t wait_depth_cancels = 0;
  uint64_t deadline_aborts = 0;
  uint64_t lock_deadline_cancels = 0;
  uint64_t retries = 0;
  uint64_t retries_exhausted = 0;
  double abort_rate = 0;
};

struct CellConfig {
  int agents = 8;
  uint32_t max_inflight = 2;
  uint32_t max_queue = 1;
};

/// Size the governor strictly below the agent count: the shed path only
/// exists when arrivals can outnumber tokens + queue slots, and the bench
/// must demonstrate it on any host. But not too far below — capacity is
/// calibrated closed-loop with ALL agents, and tokens sized off the (often
/// tiny) core count throttle governed service well under that capacity,
/// which reads as the governor losing even at loads it should carry.
/// Half the agent pool keeps service near calibrated capacity on an
/// oversubscribed host (the extra agents mostly overlap lock/log waits)
/// while leaving the other half to demonstrate shedding.
CellConfig MakeCellConfig(int agents) {
  CellConfig c;
  c.agents = agents;
  c.max_inflight = std::max(2u, static_cast<uint32_t>(agents) / 2);
  c.max_queue = std::max(1u, c.max_inflight / 4);
  return c;
}

/// One scenario = one database, calibrated once (closed loop, governor
/// off), then swept offered-load × governor with back-to-back windows so
/// the off/on rows of each load point see the same neighborhood of
/// background noise (same rationale as macro_contention's interleaving).
std::vector<OverloadSample> RunScenario(ContentionOptions copts,
                                        const CellConfig& cell,
                                        const BenchArgs& args) {
  DatabaseOptions o = BenchDbOptions(/*sli=*/false);
  // Small-host heat thresholds, as in macro_contention: trigger on little
  // contention, cool only on a calm window.
  o.lock.hot_min_contended = 2;
  o.lock.hot_exit_contended = 0;

  Database db(o);
  ContentionWorkload workload(copts);
  workload.Load(db);

  const double duration = args.quick ? std::min(0.4, args.duration_s)
                                     : args.duration_s;
  const double warmup = args.quick ? std::min(0.1, args.warmup_s)
                                   : args.warmup_s;

  // Discarded warm-up window (cold allocators, empty lock table).
  {
    DriverOptions wopts;
    wopts.num_agents = cell.agents;
    wopts.duration_s = std::min(0.3, duration);
    wopts.warmup_s = 0;
    wopts.seed = args.seed;
    (void)RunWorkload(db, workload, wopts);
  }

  // Capacity calibration: closed loop, no deadline, no governor.
  DriverOptions calib;
  calib.num_agents = cell.agents;
  calib.duration_s = std::max(0.3, duration / 2);
  calib.warmup_s = warmup;
  calib.seed = args.seed + 1;
  const DriverResult cap = RunWorkload(db, workload, calib);
  const double capacity = std::max(cap.tps, 100.0);
  std::printf("# %s: closed-loop capacity %.0f tps (%d agents)\n",
              ContentionScenarioName(copts.scenario), capacity, cell.agents);

  std::vector<OverloadSample> out;
  uint64_t run_seed = args.seed;
  for (const double frac : kOfferedFracs) {
    for (const bool governor_on : {false, true}) {
      if (governor_on) {
        db.governor().SetOptions(
            GovernorOptions{cell.max_inflight, cell.max_queue});
        db.lock_manager().mutable_options().hot_wait_depth = kHotWaitDepth;
      } else {
        db.governor().SetOptions(GovernorOptions{});
        db.lock_manager().mutable_options().hot_wait_depth = 0;
      }

      DriverOptions dopts;
      dopts.num_agents = cell.agents;
      dopts.duration_s = duration;
      dopts.warmup_s = warmup;
      dopts.seed = ++run_seed * 7919;
      dopts.offered_tps = frac * capacity;
      dopts.txn_deadline_us = kDeadlineUs;
      dopts.use_governor = governor_on;
      dopts.retry.max_attempts = 3;
      dopts.retry.backoff_base_us = 100;
      dopts.retry.backoff_cap_us = 2'000;
      const DriverResult r = RunWorkload(db, workload, dopts);

      OverloadSample s;
      s.scenario = ContentionScenarioName(copts.scenario);
      s.frac = frac;
      s.offered_tps = dopts.offered_tps;
      s.mode = governor_on ? "gov_on" : "gov_off";
      s.agents = cell.agents;
      s.tps = r.tps;
      s.goodput_tps = r.goodput_tps;
      s.commits = r.commits;
      s.goodput_commits = r.goodput_commits;
      s.deadline_misses = r.deadline_misses;
      s.p50_ms = static_cast<double>(r.latency_ns.Percentile(0.50)) / 1e6;
      s.p99_ms = static_cast<double>(r.latency_ns.Percentile(0.99)) / 1e6;
      s.gov_sheds = r.gov_sheds;
      s.gov_queue_timeouts = r.counters.Get(Counter::kGovQueueTimeouts);
      s.wait_depth_cancels = r.wait_depth_cancels;
      s.deadline_aborts = r.deadline_aborts;
      s.lock_deadline_cancels =
          r.counters.Get(Counter::kLockDeadlineCancels);
      s.retries = r.retries;
      s.retries_exhausted = r.retries_exhausted;
      s.abort_rate = r.AbortRate();
      out.push_back(std::move(s));
    }
  }
  // Restore defaults so the database is inert if reused.
  db.governor().SetOptions(GovernorOptions{});
  db.lock_manager().mutable_options().hot_wait_depth = 0;
  return out;
}

int Main(int argc, char** argv) {
  const BenchArgs args = ParseArgs(argc, argv);
  int agents = 8;
  if (args.max_threads > 0 && agents > args.max_threads) {
    agents = std::max(2, args.max_threads);
  }
  const CellConfig cell = MakeCellConfig(agents);

  ContentionOptions zipf;
  zipf.scenario = ContentionScenario::kZipfMix;
  zipf.theta = 0.99;
  zipf.num_items = args.quick ? 5'000 : 20'000;

  ContentionOptions flash;
  flash.scenario = ContentionScenario::kFlashSale;
  flash.num_items = zipf.num_items;
  // Half the arrivals buy: a strong X-conflict stream on the single
  // hottest head, the regime wait-depth limiting exists for.
  flash.write_fraction = 0.5;

  std::vector<OverloadSample> samples;
  TablePrinter table({"scenario", "frac", "governor", "offered", "tps",
                      "goodput", "p99_ms", "sheds", "depth_cxl", "dl_aborts",
                      "retries"});
  const auto add_rows = [&](std::vector<OverloadSample> rows) {
    for (OverloadSample& s : rows) {
      table.Row({s.scenario, Fmt("%.1fx", s.frac), s.mode,
                 Fmt("%.0f", s.offered_tps), Fmt("%.0f", s.tps),
                 Fmt("%.0f", s.goodput_tps), Fmt("%.2f", s.p99_ms),
                 Fmt("%llu", static_cast<unsigned long long>(
                                 s.gov_sheds + s.gov_queue_timeouts)),
                 Fmt("%llu",
                     static_cast<unsigned long long>(s.wait_depth_cancels)),
                 Fmt("%llu", static_cast<unsigned long long>(
                                 s.deadline_aborts + s.lock_deadline_cancels)),
                 Fmt("%llu", static_cast<unsigned long long>(s.retries))});
      samples.push_back(std::move(s));
    }
  };

  std::printf("== open-loop overload sweep (%d agents, deadline %.0f ms, "
              "inflight %u, queue %u) ==\n",
              cell.agents, kDeadlineUs / 1e3, cell.max_inflight,
              cell.max_queue);
  add_rows(RunScenario(zipf, cell, args));
  add_rows(RunScenario(flash, cell, args));

  // Headline: graceful degradation — governor-on goodput at the highest
  // offered load vs its own peak, and vs the governor-off row.
  for (const char* scenario : {"zipf_mix", "flash_sale"}) {
    double on_peak = 0, on_last = 0, off_last = 0;
    for (const OverloadSample& s : samples) {
      if (s.scenario != scenario) continue;
      if (std::strcmp(s.mode, "gov_on") == 0) {
        on_peak = std::max(on_peak, s.goodput_tps);
        if (s.frac == 4.0) on_last = s.goodput_tps;
      } else if (s.frac == 4.0) {
        off_last = s.goodput_tps;
      }
    }
    if (on_peak > 0) {
      std::printf("# %s @4x: governor goodput %.0f (%.0f%% of its peak); "
                  "governor-off %.0f\n",
                  scenario, on_last, 100.0 * on_last / on_peak, off_last);
    }
  }

  JsonWriter json;
  json.BeginObject();
  json.Key("bench").Value("macro_overload");
  json.Key("quick").Value(args.quick);
  json.Key("agents").Value(cell.agents);
  json.Key("max_inflight").Value(static_cast<uint64_t>(cell.max_inflight));
  json.Key("max_queue").Value(static_cast<uint64_t>(cell.max_queue));
  json.Key("deadline_us").Value(kDeadlineUs);
  json.Key("hot_wait_depth").Value(static_cast<uint64_t>(kHotWaitDepth));
  json.Key("rows").BeginArray();
  for (const OverloadSample& s : samples) {
    json.BeginObject();
    json.Key("scenario").Value(s.scenario);
    json.Key("frac").Value(s.frac);
    json.Key("offered_tps").Value(s.offered_tps);
    json.Key("mode").Value(s.mode);
    json.Key("agents").Value(s.agents);
    json.Key("tps").Value(s.tps);
    json.Key("goodput_tps").Value(s.goodput_tps);
    json.Key("commits").Value(s.commits);
    json.Key("goodput_commits").Value(s.goodput_commits);
    json.Key("deadline_misses").Value(s.deadline_misses);
    json.Key("p50_ms").Value(s.p50_ms);
    json.Key("p99_ms").Value(s.p99_ms);
    json.Key("gov_sheds").Value(s.gov_sheds);
    json.Key("gov_queue_timeouts").Value(s.gov_queue_timeouts);
    json.Key("wait_depth_cancels").Value(s.wait_depth_cancels);
    json.Key("deadline_aborts").Value(s.deadline_aborts);
    json.Key("lock_deadline_cancels").Value(s.lock_deadline_cancels);
    json.Key("retries").Value(s.retries);
    json.Key("retries_exhausted").Value(s.retries_exhausted);
    json.Key("abort_rate").Value(s.abort_rate);
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();
  if (!args.json_path.empty()) {
    if (!json.WriteTo(args.json_path)) {
      std::fprintf(stderr, "failed to write %s\n", args.json_path.c_str());
      return 1;
    }
    std::printf("wrote %s\n", args.json_path.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace slidb::bench

int main(int argc, char** argv) { return slidb::bench::Main(argc, argv); }
