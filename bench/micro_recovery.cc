// Recovery-replay microbenchmark: how fast the system comes back.
//
// Recovery time bounds the availability story the durable log buys us: a
// crashed node serves nothing until redo finishes. This bench builds a
// realistic TPC-B-style log through the real engine (checksummed records,
// heap + index redo payloads), then measures the two recovery phases
// separately:
//
//   scan:   validate-only pass — CRC32C + self-LSN checks over the whole
//           stream and committed-set construction (MB/s, records/s).
//   replay: full recovery — scan plus redo of every committed mutation
//           into fresh storage (records/s, txns/s).
//
// Two further sections quantify the PR-8 robustness work:
//
//   bounded_restart: the same history with periodic fuzzy checkpoints —
//           recovery anchors on the last complete checkpoint and redoes
//           only the tail, so restart cost is bounded by checkpoint
//           cadence instead of history length. Reports the redo fraction
//           and the wall-clock speedup over the uncheckpointed replay.
//   fsync_cadence: real-disk FileLogDevice append throughput at fsync
//           cadence 1 (sync every flush), 8 (coalesced), and 0 (never —
//           page-cache ceiling), the measured trade-off behind
//           LogOptions::fsync_every_n_flushes.
//
// Emits a table on stdout and, with --json=FILE, BENCH_recovery.json:
// {"bench":"micro_recovery","log_bytes":…,"records":…,
//  "scan":[{"mb_per_s":…,"records_per_s":…}],
//  "replay":[{"mb_per_s":…,"records_per_s":…,"txns_per_s":…}],
//  "bounded_restart":{"redo_fraction":…,"speedup":…,…},
//  "fsync_cadence":[{"cadence":…,"mb_per_s":…,"appends_per_s":…}]}.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "src/engine/database.h"
#include "src/log/log_device.h"
#include "src/log/recovery.h"
#include "src/util/rng.h"
#include "src/util/time_util.h"

namespace slidb::bench {
namespace {

struct Workload {
  std::vector<uint8_t> stream;
  uint64_t records = 0;
  uint64_t committed = 0;
  uint64_t redo_bytes = 0;   ///< bytes redo actually walks (anchor-aware)
  uint64_t redo_start = 0;   ///< redo-start LSN of the last checkpoint
  uint64_t checkpoints = 0;  ///< complete checkpoints in the stream
};

/// Run a TPC-B-style history through the real engine, capturing the exact
/// durable byte stream the flusher emits. `checkpoint_every` > 0 takes a
/// fuzzy checkpoint every that-many transactions.
Workload BuildLog(uint64_t txns, uint64_t seed,
                  uint64_t checkpoint_every = 0) {
  InMemoryLogDevice device;
  Workload out;
  {
    DatabaseOptions o;
    o.buffer.num_frames = 4096;
    o.log.flush_interval_us = 20;
    AttachLogDevice(&o.log, &device);
    Database db(o);
    const TableId accounts = db.CreateTable("accounts");
    const IndexId by_id =
        db.CreateIndex(accounts, "by_id", IndexKind::kBTree, false);
    auto agent = db.CreateAgent(seed);
    Rng rng(seed);

    constexpr uint64_t kAccounts = 1024;
    std::vector<Rid> rids(kAccounts);
    struct Account {
      uint64_t id;
      uint64_t balance;
      char filler[84];  // ~100 B rows, the TPC-B ballpark
    };
    db.Begin(agent.get());
    for (uint64_t i = 0; i < kAccounts; ++i) {
      Account a{i, 10'000, {}};
      if (!db.Insert(agent.get(), accounts,
                     {reinterpret_cast<const uint8_t*>(&a), sizeof(a)},
                     &rids[i])
               .ok()) {
        std::abort();
      }
      if (!db.IndexInsert(agent.get(), by_id, i, rids[i].ToU64()).ok()) {
        std::abort();
      }
    }
    if (!db.Commit(agent.get()).ok()) std::abort();
    ++out.committed;

    for (uint64_t i = 0; i < txns; ++i) {
      if (checkpoint_every != 0 && i != 0 && i % checkpoint_every == 0) {
        if (!db.CheckpointNow().ok()) std::abort();
      }
      db.Begin(agent.get());
      // One TPC-B-ish transaction: debit one account, credit another.
      for (int leg = 0; leg < 2; ++leg) {
        const Rid rid = rids[rng.Next() % kAccounts];
        Account a{};
        if (!db.Read(agent.get(), accounts, rid, &a, sizeof(a)).ok()) {
          std::abort();
        }
        a.balance += leg == 0 ? -10 : 10;
        if (!db.Update(agent.get(), accounts, rid,
                       {reinterpret_cast<const uint8_t*>(&a), sizeof(a)})
                 .ok()) {
          std::abort();
        }
      }
      if (!db.Commit(agent.get()).ok()) std::abort();
      ++out.committed;
    }
  }  // teardown drains the flusher into the device
  if (!device.ReadAll(&out.stream).ok()) std::abort();
  RecoveryManager rm(out.stream);
  const RecoveryReport& r = rm.Scan();
  out.records = r.records_scanned;
  out.redo_bytes = r.redo_bytes;
  out.redo_start = r.redo_start_lsn;
  out.checkpoints = r.checkpoint_anchored ? 1 : 0;
  return out;
}

struct Sample {
  double mb_per_s;
  double records_per_s;
  double txns_per_s;
  double secs_per_iter;
  uint64_t iters;
};

Sample MeasureScan(const Workload& w, double window_s) {
  const uint64_t start = NowMicros();
  const auto deadline =
      start + static_cast<uint64_t>(window_s * 1'000'000.0);
  uint64_t iters = 0;
  do {
    // Non-owning view: the scan is measured, not a per-pass stream copy.
    RecoveryManager rm(w.stream.data(), w.stream.size());
    if (rm.Scan().records_scanned != w.records) std::abort();
    ++iters;
  } while (NowMicros() < deadline);
  const double secs =
      static_cast<double>(NowMicros() - start) / 1'000'000.0;
  Sample s{};
  s.iters = iters;
  s.secs_per_iter = secs / static_cast<double>(iters);
  s.mb_per_s = static_cast<double>(w.stream.size()) * iters / secs / 1e6;
  s.records_per_s = static_cast<double>(w.records) * iters / secs;
  s.txns_per_s = static_cast<double>(w.committed) * iters / secs;
  return s;
}

Sample MeasureReplay(const Workload& w, double window_s) {
  const uint64_t start = NowMicros();
  const auto deadline =
      start + static_cast<uint64_t>(window_s * 1'000'000.0);
  uint64_t iters = 0;
  uint64_t measured_us = 0;  // scan+redo only; target setup is not recovery
  do {
    Volume volume;
    BufferPoolOptions po;
    po.num_frames = 4096;
    BufferPool pool(&volume, po);
    Catalog catalog;
    const TableId t =
        catalog.AddTable("accounts", std::make_unique<HeapFile>(&pool));
    catalog.AddIndex(t, "by_id", IndexKind::kBTree, false);
    RecoveryManager rm(w.stream.data(), w.stream.size());
    const uint64_t t0 = NowMicros();
    if (!rm.Replay(&catalog).ok()) std::abort();
    measured_us += NowMicros() - t0;
    if (rm.report().records_replayed == 0) std::abort();
    ++iters;
  } while (NowMicros() < deadline);
  const double secs = static_cast<double>(measured_us) / 1'000'000.0;
  Sample s{};
  s.iters = iters;
  s.secs_per_iter = secs / static_cast<double>(iters);
  s.mb_per_s = static_cast<double>(w.stream.size()) * iters / secs / 1e6;
  s.records_per_s = static_cast<double>(w.records) * iters / secs;
  s.txns_per_s = static_cast<double>(w.committed) * iters / secs;
  return s;
}

/// Bounded restart as the engine actually delivers it: segment recycling
/// (SegmentedLogDevice::RecycleBelow) trims the on-disk log to the last
/// checkpoint's redo-start, so a restart reads and scans ONLY the tail.
/// This measures recovery over that trimmed stream — the base-LSN
/// constructor is the same path Database::Recover takes after recycling.
Sample MeasureAnchoredReplay(const Workload& w, double window_s) {
  if (w.redo_start == 0) std::abort();  // caller guarantees a checkpoint
  const std::vector<uint8_t> tail(w.stream.begin() + w.redo_start,
                                  w.stream.end());
  const uint64_t start = NowMicros();
  const auto deadline =
      start + static_cast<uint64_t>(window_s * 1'000'000.0);
  uint64_t iters = 0;
  uint64_t measured_us = 0;
  do {
    Volume volume;
    BufferPoolOptions po;
    po.num_frames = 4096;
    BufferPool pool(&volume, po);
    Catalog catalog;
    const TableId t =
        catalog.AddTable("accounts", std::make_unique<HeapFile>(&pool));
    catalog.AddIndex(t, "by_id", IndexKind::kBTree, false);
    RecoveryManager rm(tail.data(), tail.size(), w.redo_start);
    const uint64_t t0 = NowMicros();
    if (!rm.Replay(&catalog).ok()) std::abort();
    measured_us += NowMicros() - t0;
    if (!rm.report().checkpoint_anchored) std::abort();
    ++iters;
  } while (NowMicros() < deadline);
  const double secs = static_cast<double>(measured_us) / 1'000'000.0;
  Sample s{};
  s.iters = iters;
  s.secs_per_iter = secs / static_cast<double>(iters);
  s.mb_per_s = static_cast<double>(tail.size()) * iters / secs / 1e6;
  s.records_per_s = static_cast<double>(w.records) * iters / secs;
  s.txns_per_s = static_cast<double>(w.committed) * iters / secs;
  return s;
}

struct FsyncSample {
  uint32_t cadence;
  double mb_per_s;
  double appends_per_s;
};

/// Real-disk append throughput through a FileLogDevice at the given fsync
/// cadence. Each append models one flusher pass (~4 KiB of log).
FsyncSample MeasureFsyncCadence(uint32_t cadence, uint64_t appends) {
  const std::string path = "slidb_bench_fsync.log";
  std::remove(path.c_str());
  constexpr size_t kChunk = 4096;
  std::vector<uint8_t> buf(kChunk, 0xA5);
  const uint64_t start = NowMicros();
  {
    std::unique_ptr<FileLogDevice> dev;
    if (!FileLogDevice::Open(path, cadence, &dev).ok()) std::abort();
    Lsn lsn = 0;
    for (uint64_t i = 0; i < appends; ++i) {
      if (!dev->Append(buf.data(), buf.size(), lsn).ok()) std::abort();
      lsn += buf.size();
    }
  }  // destructor syncs any unsynced tail (cadence > 1)
  const double secs =
      static_cast<double>(NowMicros() - start) / 1'000'000.0;
  std::remove(path.c_str());
  FsyncSample s{};
  s.cadence = cadence;
  s.mb_per_s = static_cast<double>(appends * kChunk) / secs / 1e6;
  s.appends_per_s = static_cast<double>(appends) / secs;
  return s;
}

int Main(int argc, char** argv) {
  const BenchArgs args = ParseArgs(argc, argv);
  const uint64_t txns = args.quick ? 2'000 : 20'000;
  const double window = args.quick ? 0.3 : args.duration_s;

  const Workload w = BuildLog(txns, args.seed);
  std::printf("# log: %zu bytes, %llu records, %llu committed txns\n",
              w.stream.size(), static_cast<unsigned long long>(w.records),
              static_cast<unsigned long long>(w.committed));

  const Sample scan = MeasureScan(w, window);
  const Sample replay = MeasureReplay(w, window);

  // Bounded restart: the same history, checkpointed every txns/8
  // transactions. Recovery anchors on the last complete checkpoint, so the
  // redo pass walks only the post-checkpoint tail.
  const uint64_t ckpt_every = std::max<uint64_t>(1, txns / 8);
  const Workload wc = BuildLog(txns, args.seed, ckpt_every);
  if (wc.checkpoints == 0) {
    std::fprintf(stderr, "checkpointed log failed to anchor\n");
    return 1;
  }
  const Sample ckpt_replay = MeasureAnchoredReplay(wc, window);
  const double redo_fraction =
      static_cast<double>(wc.redo_bytes) / static_cast<double>(wc.stream.size());
  const double speedup = replay.secs_per_iter / ckpt_replay.secs_per_iter;
  std::printf(
      "# bounded restart: checkpoint every %llu txns, redo %llu of %zu "
      "bytes (%.1f%%), restart %.2fx faster than full replay\n",
      static_cast<unsigned long long>(ckpt_every),
      static_cast<unsigned long long>(wc.redo_bytes), wc.stream.size(),
      100.0 * redo_fraction, speedup);

  TablePrinter table({"phase", "MB/s", "records/s", "txns/s", "iters"});
  table.Row({"scan", Fmt("%.1f", scan.mb_per_s),
             Fmt("%.0f", scan.records_per_s), "-",
             Fmt("%llu", static_cast<unsigned long long>(scan.iters))});
  table.Row({"replay", Fmt("%.1f", replay.mb_per_s),
             Fmt("%.0f", replay.records_per_s),
             Fmt("%.0f", replay.txns_per_s),
             Fmt("%llu", static_cast<unsigned long long>(replay.iters))});
  table.Row({"ckpt-replay", Fmt("%.1f", ckpt_replay.mb_per_s),
             Fmt("%.0f", ckpt_replay.records_per_s),
             Fmt("%.0f", ckpt_replay.txns_per_s),
             Fmt("%llu", static_cast<unsigned long long>(ckpt_replay.iters))});

  // Real-disk fsync trade-off: cadence 1 is the durability contract,
  // 8 coalesces syncs, 0 is the page-cache ceiling.
  const uint64_t fsync_appends = args.quick ? 256 : 2048;
  std::vector<FsyncSample> cadences;
  for (const uint32_t c : {1u, 8u, 0u}) {
    cadences.push_back(MeasureFsyncCadence(c, fsync_appends));
  }
  TablePrinter ftable({"fsync-cadence", "MB/s", "appends/s"});
  for (const FsyncSample& s : cadences) {
    ftable.Row({s.cadence == 0 ? "never" : Fmt("%u", s.cadence),
                Fmt("%.1f", s.mb_per_s), Fmt("%.0f", s.appends_per_s)});
  }

  JsonWriter json;
  json.BeginObject();
  json.Key("bench").Value("micro_recovery");
  json.Key("quick").Value(args.quick);
  json.Key("log_bytes").Value(static_cast<uint64_t>(w.stream.size()));
  json.Key("records").Value(w.records);
  json.Key("committed_txns").Value(w.committed);
  json.Key("scan").BeginArray();
  json.BeginObject();
  json.Key("mb_per_s").Value(scan.mb_per_s);
  json.Key("records_per_s").Value(scan.records_per_s);
  json.Key("iters").Value(scan.iters);
  json.EndObject();
  json.EndArray();
  json.Key("replay").BeginArray();
  json.BeginObject();
  json.Key("mb_per_s").Value(replay.mb_per_s);
  json.Key("records_per_s").Value(replay.records_per_s);
  json.Key("txns_per_s").Value(replay.txns_per_s);
  json.Key("iters").Value(replay.iters);
  json.EndObject();
  json.EndArray();
  json.Key("bounded_restart").BeginObject();
  json.Key("checkpoint_every_txns").Value(ckpt_every);
  json.Key("log_bytes").Value(static_cast<uint64_t>(wc.stream.size()));
  json.Key("redo_bytes").Value(wc.redo_bytes);
  json.Key("redo_fraction").Value(redo_fraction);
  json.Key("full_replay_s").Value(replay.secs_per_iter);
  json.Key("checkpointed_replay_s").Value(ckpt_replay.secs_per_iter);
  json.Key("speedup").Value(speedup);
  json.EndObject();
  json.Key("fsync_cadence").BeginArray();
  for (const FsyncSample& s : cadences) {
    json.BeginObject();
    json.Key("cadence").Value(static_cast<uint64_t>(s.cadence));
    json.Key("mb_per_s").Value(s.mb_per_s);
    json.Key("appends_per_s").Value(s.appends_per_s);
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();
  if (!args.json_path.empty()) {
    if (!json.WriteTo(args.json_path)) {
      std::fprintf(stderr, "failed to write %s\n", args.json_path.c_str());
      return 1;
    }
    std::printf("wrote %s\n", args.json_path.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace slidb::bench

int main(int argc, char** argv) { return slidb::bench::Main(argc, argv); }
