// Recovery-replay microbenchmark: how fast the system comes back.
//
// Recovery time bounds the availability story the durable log buys us: a
// crashed node serves nothing until redo finishes. This bench builds a
// realistic TPC-B-style log through the real engine (checksummed records,
// heap + index redo payloads), then measures the two recovery phases
// separately:
//
//   scan:   validate-only pass — CRC32C + self-LSN checks over the whole
//           stream and committed-set construction (MB/s, records/s).
//   replay: full recovery — scan plus redo of every committed mutation
//           into fresh storage (records/s, txns/s).
//
// Emits a table on stdout and, with --json=FILE, BENCH_recovery.json:
// {"bench":"micro_recovery","log_bytes":…,"records":…,
//  "scan":[{"mb_per_s":…,"records_per_s":…}],
//  "replay":[{"mb_per_s":…,"records_per_s":…,"txns_per_s":…}]}.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_common.h"
#include "src/engine/database.h"
#include "src/log/log_device.h"
#include "src/log/recovery.h"
#include "src/util/rng.h"
#include "src/util/time_util.h"

namespace slidb::bench {
namespace {

struct Workload {
  std::vector<uint8_t> stream;
  uint64_t records = 0;
  uint64_t committed = 0;
};

/// Run a TPC-B-style history through the real engine, capturing the exact
/// durable byte stream the flusher emits.
Workload BuildLog(uint64_t txns, uint64_t seed) {
  InMemoryLogDevice device;
  Workload out;
  {
    DatabaseOptions o;
    o.buffer.num_frames = 4096;
    o.log.flush_interval_us = 20;
    AttachLogDevice(&o.log, &device);
    Database db(o);
    const TableId accounts = db.CreateTable("accounts");
    const IndexId by_id =
        db.CreateIndex(accounts, "by_id", IndexKind::kBTree, false);
    auto agent = db.CreateAgent(seed);
    Rng rng(seed);

    constexpr uint64_t kAccounts = 1024;
    std::vector<Rid> rids(kAccounts);
    struct Account {
      uint64_t id;
      uint64_t balance;
      char filler[84];  // ~100 B rows, the TPC-B ballpark
    };
    db.Begin(agent.get());
    for (uint64_t i = 0; i < kAccounts; ++i) {
      Account a{i, 10'000, {}};
      if (!db.Insert(agent.get(), accounts,
                     {reinterpret_cast<const uint8_t*>(&a), sizeof(a)},
                     &rids[i])
               .ok()) {
        std::abort();
      }
      if (!db.IndexInsert(agent.get(), by_id, i, rids[i].ToU64()).ok()) {
        std::abort();
      }
    }
    if (!db.Commit(agent.get()).ok()) std::abort();
    ++out.committed;

    for (uint64_t i = 0; i < txns; ++i) {
      db.Begin(agent.get());
      // One TPC-B-ish transaction: debit one account, credit another.
      for (int leg = 0; leg < 2; ++leg) {
        const Rid rid = rids[rng.Next() % kAccounts];
        Account a{};
        if (!db.Read(agent.get(), accounts, rid, &a, sizeof(a)).ok()) {
          std::abort();
        }
        a.balance += leg == 0 ? -10 : 10;
        if (!db.Update(agent.get(), accounts, rid,
                       {reinterpret_cast<const uint8_t*>(&a), sizeof(a)})
                 .ok()) {
          std::abort();
        }
      }
      if (!db.Commit(agent.get()).ok()) std::abort();
      ++out.committed;
    }
  }  // teardown drains the flusher into the device
  if (!device.ReadAll(&out.stream).ok()) std::abort();
  RecoveryManager rm(out.stream);
  out.records = rm.Scan().records_scanned;
  return out;
}

struct Sample {
  double mb_per_s;
  double records_per_s;
  double txns_per_s;
  uint64_t iters;
};

Sample MeasureScan(const Workload& w, double window_s) {
  const uint64_t start = NowMicros();
  const auto deadline =
      start + static_cast<uint64_t>(window_s * 1'000'000.0);
  uint64_t iters = 0;
  do {
    // Non-owning view: the scan is measured, not a per-pass stream copy.
    RecoveryManager rm(w.stream.data(), w.stream.size());
    if (rm.Scan().records_scanned != w.records) std::abort();
    ++iters;
  } while (NowMicros() < deadline);
  const double secs =
      static_cast<double>(NowMicros() - start) / 1'000'000.0;
  Sample s{};
  s.iters = iters;
  s.mb_per_s = static_cast<double>(w.stream.size()) * iters / secs / 1e6;
  s.records_per_s = static_cast<double>(w.records) * iters / secs;
  s.txns_per_s = static_cast<double>(w.committed) * iters / secs;
  return s;
}

Sample MeasureReplay(const Workload& w, double window_s) {
  const uint64_t start = NowMicros();
  const auto deadline =
      start + static_cast<uint64_t>(window_s * 1'000'000.0);
  uint64_t iters = 0;
  do {
    Volume volume;
    BufferPoolOptions po;
    po.num_frames = 4096;
    BufferPool pool(&volume, po);
    Catalog catalog;
    const TableId t =
        catalog.AddTable("accounts", std::make_unique<HeapFile>(&pool));
    catalog.AddIndex(t, "by_id", IndexKind::kBTree, false);
    RecoveryManager rm(w.stream.data(), w.stream.size());
    if (!rm.Replay(&catalog).ok()) std::abort();
    if (rm.report().records_replayed == 0) std::abort();
    ++iters;
  } while (NowMicros() < deadline);
  const double secs =
      static_cast<double>(NowMicros() - start) / 1'000'000.0;
  Sample s{};
  s.iters = iters;
  s.mb_per_s = static_cast<double>(w.stream.size()) * iters / secs / 1e6;
  s.records_per_s = static_cast<double>(w.records) * iters / secs;
  s.txns_per_s = static_cast<double>(w.committed) * iters / secs;
  return s;
}

int Main(int argc, char** argv) {
  const BenchArgs args = ParseArgs(argc, argv);
  const uint64_t txns = args.quick ? 2'000 : 20'000;
  const double window = args.quick ? 0.3 : args.duration_s;

  const Workload w = BuildLog(txns, args.seed);
  std::printf("# log: %zu bytes, %llu records, %llu committed txns\n",
              w.stream.size(), static_cast<unsigned long long>(w.records),
              static_cast<unsigned long long>(w.committed));

  const Sample scan = MeasureScan(w, window);
  const Sample replay = MeasureReplay(w, window);

  TablePrinter table({"phase", "MB/s", "records/s", "txns/s", "iters"});
  table.Row({"scan", Fmt("%.1f", scan.mb_per_s),
             Fmt("%.0f", scan.records_per_s), "-",
             Fmt("%llu", static_cast<unsigned long long>(scan.iters))});
  table.Row({"replay", Fmt("%.1f", replay.mb_per_s),
             Fmt("%.0f", replay.records_per_s),
             Fmt("%.0f", replay.txns_per_s),
             Fmt("%llu", static_cast<unsigned long long>(replay.iters))});

  JsonWriter json;
  json.BeginObject();
  json.Key("bench").Value("micro_recovery");
  json.Key("quick").Value(args.quick);
  json.Key("log_bytes").Value(static_cast<uint64_t>(w.stream.size()));
  json.Key("records").Value(w.records);
  json.Key("committed_txns").Value(w.committed);
  json.Key("scan").BeginArray();
  json.BeginObject();
  json.Key("mb_per_s").Value(scan.mb_per_s);
  json.Key("records_per_s").Value(scan.records_per_s);
  json.Key("iters").Value(scan.iters);
  json.EndObject();
  json.EndArray();
  json.Key("replay").BeginArray();
  json.BeginObject();
  json.Key("mb_per_s").Value(replay.mb_per_s);
  json.Key("records_per_s").Value(replay.records_per_s);
  json.Key("txns_per_s").Value(replay.txns_per_s);
  json.Key("iters").Value(replay.iters);
  json.EndObject();
  json.EndArray();
  json.EndObject();
  if (!args.json_path.empty()) {
    if (!json.WriteTo(args.json_path)) {
      std::fprintf(stderr, "failed to write %s\n", args.json_path.c_str());
      return 1;
    }
    std::printf("wrote %s\n", args.json_path.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace slidb::bench

int main(int argc, char** argv) { return slidb::bench::Main(argc, argv); }
