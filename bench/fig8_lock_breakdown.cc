// Figure 8: breakdown of the types of locks acquired by each transaction —
// hot vs cold × heritable (shared, page-or-higher) vs not × row vs
// high-level — plus the average number of locks per transaction (the
// number printed atop each bar in the paper).
#include <cstdio>

#include "fig_common.h"

using namespace slidb;
using namespace slidb::bench;

int main(int argc, char** argv) {
  const BenchArgs args = ParseArgs(argc, argv);
  std::printf(
      "Figure 8: lock-acquisition breakdown per transaction (SLI off)\n\n");

  TablePrinter table({"workload", "locks/txn", "row%", "high%", "hot%",
                      "hot+heritable%", "hot_row%"});
  for (auto& entry : PaperRoster(args.quick)) {
    auto pw = entry.make(/*sli=*/false);
    DriverOptions dopts;
    dopts.num_agents = args.max_threads > 0 ? args.max_threads : 8;
    dopts.duration_s = args.duration_s;
    dopts.warmup_s = args.warmup_s;
    dopts.seed = args.seed;
    const DriverResult r = RunWorkload(*pw->db, *pw->workload, dopts);

    const uint64_t row = r.counters.Get(Counter::kAcqRow);
    const uint64_t high = r.counters.Get(Counter::kAcqHigh);
    const uint64_t hot = r.counters.Get(Counter::kAcqHot);
    const uint64_t hot_her = r.counters.Get(Counter::kAcqHotHeritable);
    const uint64_t hot_row = r.counters.Get(Counter::kAcqHotRow);
    const double total = static_cast<double>(row + high);
    const double txns =
        static_cast<double>(r.commits + r.user_aborts + r.deadlock_aborts);
    const auto pct = [&](uint64_t v) {
      return total == 0 ? 0.0 : 100.0 * static_cast<double>(v) / total;
    };
    table.Row({pw->label, Fmt("%.1f", txns == 0 ? 0.0 : total / txns),
               Fmt("%.1f", pct(row)), Fmt("%.1f", pct(high)),
               Fmt("%.1f", pct(hot)), Fmt("%.1f", pct(hot_her)),
               Fmt("%.1f", pct(hot_row))});
  }
  std::printf(
      "\nExpected shape (paper): short transactions acquire few locks, most\n"
      "high-level and heritable, many hot; hot row locks are rare; the\n"
      "large TPC-C transactions have a small hot fraction.\n"
      "Note: locks/txn counts explicit acquisitions; repeated accesses hit\n"
      "the transaction's lock cache and are not re-counted.\n");
  return 0;
}
