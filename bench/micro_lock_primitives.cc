// Micro-benchmarks (google-benchmark) for the primitives underlying the
// paper's claims: latch acquisition, lock acquire/release by mode and
// level, the transaction lock-cache hit path, and — the crux — a full
// lock-manager round trip vs an SLI reclaim (one CAS).
#include <benchmark/benchmark.h>

#include "src/lock/lock_manager.h"

namespace slidb {
namespace {

void BM_SpinLatchUncontended(benchmark::State& state) {
  SpinLatch latch;
  for (auto _ : state) {
    latch.Acquire();
    latch.Release();
  }
}
BENCHMARK(BM_SpinLatchUncontended);

void BM_SpinLatchContended(benchmark::State& state) {
  static SpinLatch latch;
  for (auto _ : state) {
    latch.Acquire();
    benchmark::DoNotOptimize(&latch);
    latch.Release();
  }
}
BENCHMARK(BM_SpinLatchContended)->Threads(2)->Threads(4)->Threads(8);

void BM_RwLatchShared(benchmark::State& state) {
  static RwLatch latch;
  for (auto _ : state) {
    latch.AcquireShared();
    latch.ReleaseShared();
  }
}
BENCHMARK(BM_RwLatchShared)->Threads(1)->Threads(4);

LockManagerOptions QuietOptions() {
  LockManagerOptions o;
  o.enable_deadlock_detector = false;
  return o;
}

/// Full acquire+release round trip through the lock manager, by level.
void BM_LockAcquireRelease(benchmark::State& state) {
  LockManager lm(QuietOptions());
  LockClient c;
  uint64_t txn = 1;
  const int level = static_cast<int>(state.range(0));
  for (auto _ : state) {
    c.StartTxn(txn++, 0);
    LockId id;
    switch (level) {
      case 0: id = LockId::Table(0, 1); break;
      case 1: id = LockId::Page(0, 1, 7); break;
      default: id = LockId::Row(0, 1, 7, 3); break;
    }
    benchmark::DoNotOptimize(lm.Lock(&c, id, LockMode::kS));
    lm.ReleaseAll(&c, nullptr, false);
  }
}
BENCHMARK(BM_LockAcquireRelease)->Arg(0)->Arg(1)->Arg(2);

/// Repeat-acquire: the transaction lock-cache hit path.
void BM_LockCacheHit(benchmark::State& state) {
  LockManager lm(QuietOptions());
  LockClient c;
  c.StartTxn(1, 0);
  (void)lm.Lock(&c, LockId::Table(0, 1), LockMode::kS);
  for (auto _ : state) {
    benchmark::DoNotOptimize(lm.Lock(&c, LockId::Table(0, 1), LockMode::kS));
  }
  lm.ReleaseAll(&c, nullptr, false);
}
BENCHMARK(BM_LockCacheHit);

/// The SLI fast path: commit inherits, next transaction reclaims via CAS.
/// Compare against BM_LockAcquireRelease/0 — the round trip it replaces.
void BM_SliInheritReclaimCycle(benchmark::State& state) {
  LockManagerOptions o = QuietOptions();
  o.enable_sli = true;
  o.sli_require_hot = false;
  LockManager lm(o);
  AgentSliState sli(0);
  LockClient c;
  c.SetPool(&sli.pool());
  uint64_t txn = 1;
  for (auto _ : state) {
    c.StartTxn(txn++, 0);
    lm.AdoptInherited(&c, &sli);
    benchmark::DoNotOptimize(lm.Lock(&c, LockId::Table(0, 1), LockMode::kS));
    lm.ReleaseAll(&c, &sli, /*allow_inherit=*/true);
  }
  // Drain the inheritance list.
  c.StartTxn(txn++, 0);
  lm.ReleaseAll(&c, &sli, false);
}
BENCHMARK(BM_SliInheritReclaimCycle);

/// Contended table lock: N threads hammering one table lock — the paper's
/// bottleneck in miniature. Compare ->Threads(k) growth against
/// BM_SliContendedTableLock below.
void BM_BaselineContendedTableLock(benchmark::State& state) {
  static LockManager* lm = nullptr;
  if (state.thread_index() == 0) {
    lm = new LockManager(QuietOptions());
  }
  LockClient c;
  uint64_t txn = state.thread_index() * 1'000'000 + 1;
  for (auto _ : state) {
    c.StartTxn(txn++, static_cast<uint32_t>(state.thread_index()));
    benchmark::DoNotOptimize(lm->Lock(&c, LockId::Table(0, 1), LockMode::kIS));
    lm->ReleaseAll(&c, nullptr, false);
  }
  if (state.thread_index() == 0) {
    state.SetLabel("shared table IS lock");
  }
}
BENCHMARK(BM_BaselineContendedTableLock)->Threads(1)->Threads(2)->Threads(4)->Threads(8)->UseRealTime();

void BM_SliContendedTableLock(benchmark::State& state) {
  static LockManager* lm = nullptr;
  if (state.thread_index() == 0) {
    LockManagerOptions o = QuietOptions();
    o.enable_sli = true;
    o.sli_require_hot = false;
    lm = new LockManager(o);
  }
  AgentSliState sli(static_cast<uint32_t>(state.thread_index()));
  LockClient c;
  c.SetPool(&sli.pool());
  uint64_t txn = state.thread_index() * 1'000'000 + 1;
  for (auto _ : state) {
    c.StartTxn(txn++, static_cast<uint32_t>(state.thread_index()));
    lm->AdoptInherited(&c, &sli);
    benchmark::DoNotOptimize(lm->Lock(&c, LockId::Table(0, 1), LockMode::kIS));
    lm->ReleaseAll(&c, &sli, true);
  }
  // Drain before the manager may be torn down.
  c.StartTxn(txn++, static_cast<uint32_t>(state.thread_index()));
  lm->ReleaseAll(&c, &sli, false);
  if (state.thread_index() == 0) {
    state.SetLabel("shared table IS lock, SLI");
  }
}
BENCHMARK(BM_SliContendedTableLock)->Threads(1)->Threads(2)->Threads(4)->Threads(8)->UseRealTime();

}  // namespace
}  // namespace slidb

BENCHMARK_MAIN();
