// Figure 9: outcomes for the locks SLI passes between transactions —
// inherited-and-used (reclaimed), invalidated by a conflicting request,
// or discarded unused at the next commit. The paper's shape: short
// transactions inherit most of their hot locks and reuse them; mixes
// invalidate/discard more; the largest transactions inherit almost nothing.
#include <cstdio>

#include "fig_common.h"

using namespace slidb;
using namespace slidb::bench;

int main(int argc, char** argv) {
  const BenchArgs args = ParseArgs(argc, argv);
  std::printf("Figure 9: SLI outcome breakdown per transaction (SLI on)\n\n");

  TablePrinter table({"workload", "inherited", "used%", "invalidated%",
                      "discarded%", "inh/txn"});
  for (auto& entry : PaperRoster(args.quick)) {
    auto pw = entry.make(/*sli=*/true);
    DriverOptions dopts;
    dopts.num_agents = args.max_threads > 0 ? args.max_threads : 8;
    dopts.duration_s = args.duration_s;
    dopts.warmup_s = args.warmup_s;
    dopts.seed = args.seed;
    const DriverResult r = RunWorkload(*pw->db, *pw->workload, dopts);

    const uint64_t inh = r.counters.Get(Counter::kSliInherited);
    const uint64_t used = r.counters.Get(Counter::kSliReclaimed);
    const uint64_t inval = r.counters.Get(Counter::kSliInvalidated);
    const uint64_t disc = r.counters.Get(Counter::kSliDiscarded);
    const double txns =
        static_cast<double>(r.commits + r.user_aborts + r.deadlock_aborts);
    const auto pct = [&](uint64_t v) {
      return inh == 0 ? 0.0 : 100.0 * static_cast<double>(v) / static_cast<double>(inh);
    };
    table.Row({pw->label, Fmt("%llu", static_cast<unsigned long long>(inh)),
               Fmt("%.1f", pct(used)), Fmt("%.1f", pct(inval)),
               Fmt("%.1f", pct(disc)),
               Fmt("%.2f", txns == 0 ? 0.0 : static_cast<double>(inh) / txns)});
  }
  std::printf(
      "\nExpected shape (paper): single short transactions mostly reuse\n"
      "inherited locks; mixes shift weight toward invalidated/discarded;\n"
      "long transactions (StockLevel, Delivery) inherit few locks.\n");
  return 0;
}
